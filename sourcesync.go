// Package sourcesync is a from-scratch reproduction of "SourceSync: A
// Distributed Wireless Architecture for Exploiting Sender Diversity"
// (Rahul, Hassanieh, Katabi — SIGCOMM 2010) as a Go library.
//
// The paper's hardware testbed (the WiGLAN FPGA radio and an indoor office
// deployment) is replaced by a sample-level software radio: a complete
// 802.11a-style OFDM modem, a multipath/AWGN/CFO channel emulator, and a
// distributed simulation in which co-senders really detect the lead
// sender's synchronization header over their own radio channel, estimate
// delays with the paper's phase-slope method, and join transmissions that a
// receiver then jointly decodes.
//
// The three SourceSync components live in their own packages:
//
//   - internal/sls — the Symbol Level Synchronizer (§4): detection-delay
//     estimation from channel phase slopes, probe-based propagation delay
//     measurement, co-sender wait times, ACK-driven tracking, and the
//     multi-receiver min-max LP.
//   - internal/jce — the Joint Channel Estimator (§5): per-sender channel
//     estimates and shared-pilot residual phase tracking.
//   - internal/stbc — the Smart Combiner (§6): distributed Alamouti and
//     quasi-orthogonal space-time block codes.
//
// On top of the PHY, internal/lasthop implements multi-AP downlink
// diversity (§7.1) and internal/exor opportunistic routing with co-sender
// forwarding (§7.2).
//
// This package is the public face: experiment runners that regenerate every
// figure and table in the paper's evaluation (§8), plus re-exports of the
// pieces examples need. Each experiment takes an options struct with a
// deterministic seed and returns typed results; the cmd/ssbench binary and
// the repository-root benchmarks print them.
//
// # Parallel experiment engine
//
// The runners execute their trials on internal/engine, a deterministic
// parallel scheduler: a worker pool sized to GOMAXPROCS fans independent
// trials out across goroutines, and every trial draws its math/rand stream
// from a splitmix64-style hash of (base seed, operating-point index, trial
// index) rather than from a shared generator. Because no RNG state crosses
// trial boundaries and results are reduced in trial order, an experiment's
// output is byte-identical at every worker count — including the serial
// Workers: 1 path.
//
// Each options struct carries a Workers field (0 = one worker per CPU,
// 1 = serial); cmd/ssbench exposes it as -parallel (default on) and
// -workers, and reports per-experiment wall clock so speedups are visible.
package sourcesync

import (
	"repro/internal/channel"
	"repro/internal/mac"
	"repro/internal/modem"
	"repro/internal/phy"
	"repro/internal/testbed"
)

// Re-exported configuration entry points, so example programs and library
// consumers need only this package for common tasks.

// Config is the OFDM PHY profile (re-export of modem.Config).
type Config = modem.Config

// Profile80211 returns the 20 MHz / 64-subcarrier 802.11a profile.
func Profile80211() *Config { return modem.Profile80211() }

// ProfileWiGLAN returns the 128 MHz / 128-subcarrier profile modeled on the
// paper's radio platform.
func ProfileWiGLAN() *Config { return modem.ProfileWiGLAN() }

// JointFrameParams describes a joint transmission (re-export).
type JointFrameParams = phy.JointFrameParams

// JointSimConfig wires a distributed joint-transmission simulation
// (re-export).
type JointSimConfig = phy.JointSimConfig

// JointReceiver decodes joint frames (re-export).
type JointReceiver = phy.JointReceiver

// Link is a directed radio link in a simulation (re-export).
type Link = phy.Link

// CoSenderSim is a co-sender's radio/measurement state (re-export).
type CoSenderSim = phy.CoSenderSim

// Testbed is the indoor radio environment (re-export).
type Testbed = testbed.Testbed

// DefaultTestbed returns the default office-floor environment.
func DefaultTestbed(cfg *Config) *Testbed { return testbed.Default(cfg) }

// MeshTestbed returns the lossier environment used by the mesh experiments.
func MeshTestbed(cfg *Config) *Testbed { return testbed.Mesh(cfg) }

// DCFParams returns default 802.11 DCF timing for a profile.
func DCFParams(cfg *Config) mac.Params { return mac.Default(cfg) }

// Multipath re-exports the channel's tap-delay-line type.
type Multipath = channel.Multipath
