package sourcesync

import (
	"math"
	"math/rand"

	"repro/internal/dsp"
	"repro/internal/engine"
	"repro/internal/lasthop"
	"repro/internal/mac"
	"repro/internal/modem"
	"repro/internal/netsim"
	"repro/internal/scenario"
	"repro/internal/testbed"
)

// ------------------------------------------------------------- scenario
//
// This file executes declarative scenario specs (internal/scenario): it
// maps a parsed spec onto the same lasthop/netsim machinery the
// registered experiments use. The backlogged degenerate case routes
// through RunCell itself — placement draws and all — which is what makes
// a spec mirroring ssbench's cell defaults reproduce that experiment
// byte-identically (examples/cell.json is pinned to it). Arrival-driven
// specs run fixed windows with netsim's traffic layer attached; mobility
// specs additionally drift every client at each waypoint epoch.

// ScenarioRunOptions carries the run-level knobs every experiment shares;
// the scenario itself supplies everything else.
type ScenarioRunOptions struct {
	// Seed is the fully derived seed (base seed + the spec's seed offset).
	Seed int64
	// Workers bounds the engine's parallelism: 0 uses one worker per CPU,
	// 1 runs serially. Results are identical either way.
	Workers int
	// Quick shrinks placements (and backlogs) exactly as ssbench -quick
	// shrinks the registered experiments.
	Quick bool
	// Monitor optionally observes the run and cancels it cooperatively.
	Monitor *engine.Monitor
}

// shrink applies ssbench's -quick rule (internal/experiments uses the
// same one, so a spec and its equivalent registered experiment shrink
// identically).
func (ro ScenarioRunOptions) shrink(n int) int {
	if ro.Quick && n > 4 {
		return n / 4
	}
	return n
}

// ScenarioSchemeStats is one serving scheme's aggregate outcome over a
// scenario's placements.
type ScenarioSchemeStats struct {
	Scheme            string
	MedianGoodputMbps float64 // median over placements of delivered bits / window
	Arrived           int     // packets offered by the arrival processes, summed
	Delivered         int
	Expired           int // deadline-expired before service
	Abandoned         int // queued packets taken along by leaving clients
}

// ScenarioLoadPoint is one offered-load sweep row.
type ScenarioLoadPoint struct {
	RatePps float64
	// Stats holds one entry per scheme, in the spec's SchemeList order.
	Stats []ScenarioSchemeStats
	// MedianGain is the median over placements of joint/single goodput;
	// 0 unless both schemes ran.
	MedianGain float64
}

// ScenarioArrivalsResult is the outcome of an arrival-driven scenario:
// one load point per swept rate (a single-rate spec has one point).
type ScenarioArrivalsResult struct {
	Points []ScenarioLoadPoint
}

// ScenarioMobilityResult is the outcome of a mobility scenario.
type ScenarioMobilityResult struct {
	Stats      []ScenarioSchemeStats
	MedianGain float64
	// HandoffsPerClient is the mean number of serving-cell changes each
	// client made over the window (the trajectory is scheme-independent).
	HandoffsPerClient float64
}

// ScenarioOutcome is RunScenario's result; exactly one branch is set,
// matching the spec's shape.
type ScenarioOutcome struct {
	// Cell is set for backlogged cell-family specs, which run the cell
	// experiment's own code path; CellOpts echoes the options it ran with
	// (after -quick shrinking), for rendering.
	Cell     *CellExpResult
	CellOpts CellOptions
	// Arrivals is set for arrival-driven specs without mobility.
	Arrivals *ScenarioArrivalsResult
	// Mobility is set when the spec drifts its clients.
	Mobility *ScenarioMobilityResult
}

// RunScenario executes one validated scenario spec.
func RunScenario(sp *scenario.Spec, ro ScenarioRunOptions) (*ScenarioOutcome, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if sp.Traffic.Model == scenario.ModelBacklogged {
		// The degenerate case is the registered cell experiment; running
		// its exact code keeps the spec layer honest.
		o := CellOptions{
			Seed:       ro.Seed,
			Placements: ro.shrink(sp.Topology.Placements),
			Clients:    sp.Topology.Clients,
			APs:        sp.Topology.APs,
			Packets:    ro.shrink(sp.Traffic.Packets),
			Payload:    sp.Traffic.PayloadBytes,
			WindowSec:  sp.Traffic.WindowSec,
			Workers:    ro.Workers,
			Monitor:    ro.Monitor,
		}
		res := RunCell(o)
		return &ScenarioOutcome{Cell: &res, CellOpts: o}, nil
	}
	if sp.Mobility != nil {
		return &ScenarioOutcome{Mobility: runScenarioMobility(sp, ro)}, nil
	}
	return &ScenarioOutcome{Arrivals: runScenarioArrivals(sp, ro)}, nil
}

// scenarioTraffic builds client i's arrival config at the given rate: a
// fresh process per call (on/off processes carry renewal state), plus the
// spec's deadline and churn window.
func scenarioTraffic(sp *scenario.Spec, ratePps float64, client int) netsim.TrafficConfig {
	var proc netsim.ArrivalProcess
	switch sp.Traffic.Model {
	case scenario.ModelOnOff:
		proc = &netsim.OnOff{
			RatePps:    ratePps,
			MeanOnSec:  sp.Traffic.BurstOnSec,
			MeanOffSec: sp.Traffic.BurstOffSec,
		}
	default:
		proc = netsim.Poisson{RatePps: ratePps}
	}
	cfg := netsim.TrafficConfig{Process: proc, DeadlineSec: sp.Traffic.DeadlineSec}
	if ch := sp.Churn; ch != nil {
		cfg.StartSec = ch.JoinStaggerSec * float64(client)
		if ch.LeaveAfterSec > 0 {
			cfg.StopSec = cfg.StartSec + ch.LeaveAfterSec
		}
	}
	return cfg
}

// scenClient is one client's current position and serving cell inside a
// scenario topology.
type scenClient struct {
	pos   testbed.Point
	cell  int
	links []testbed.Link
}

// scenTopo is one placement of a scenario topology: AP positions per cell
// plus the clients, cell-major, with their serving links.
type scenTopo struct {
	cellAPs [][]testbed.Point
	clients []scenClient
}

// buildScenarioTopology draws one placement. The cell family reuses the
// cell experiment's exact placement code (shadowed links drawn per
// AP-client pair). The multicell family lays cells in a row along +X,
// spaced at 1.5x the carrier-sense range, with the same per-cell geometry
// as the metro grid (APs within 10 m of the center, clients 8-25 m from
// their nearest own-cell AP); its links come from the mean path-loss
// profile — no shadowing draw — so a mobility epoch can re-derive them
// deterministically as clients move.
func buildScenarioTopology(rng *rand.Rand, env *testbed.Testbed, sp *scenario.Spec) *scenTopo {
	t := &scenTopo{}
	if sp.Topology.Family == scenario.FamilyCell {
		aps, clientPos, links := placeCell(rng, env, sp.Topology.APs, sp.Topology.Clients)
		t.cellAPs = [][]testbed.Point{aps}
		for c := range clientPos {
			t.clients = append(t.clients, scenClient{pos: clientPos[c], links: links[c]})
		}
		return t
	}
	spacing := 1.5 * sp.Topology.CSRangeM
	for ci := 0; ci < sp.Topology.Cells; ci++ {
		center := testbed.Point{X: spacing/2 + float64(ci)*spacing}
		aps := make([]testbed.Point, sp.Topology.APs)
		for a := range aps {
			aps[a] = metroPoint(rng, center, 10, 100000, func(p testbed.Point) bool {
				if testbed.Dist(p, center) > 10 {
					return false
				}
				for _, q := range aps[:a] {
					if testbed.Dist(p, q) < 4 {
						return false
					}
				}
				return true
			})
		}
		t.cellAPs = append(t.cellAPs, aps)
	}
	for ci := 0; ci < sp.Topology.Cells; ci++ {
		center := testbed.Point{X: spacing/2 + float64(ci)*spacing}
		aps := t.cellAPs[ci]
		for c := 0; c < sp.Topology.Clients; c++ {
			pos := metroPoint(rng, center, 36, 100000, func(p testbed.Point) bool {
				nearest := math.Inf(1)
				for _, q := range aps {
					if d := testbed.Dist(p, q); d < nearest {
						nearest = d
					}
				}
				return nearest >= 8 && nearest <= 25
			})
			t.clients = append(t.clients, scenClient{
				pos: pos, cell: ci, links: meanLinks(env, aps, pos),
			})
		}
	}
	return t
}

// meanLinks derives the serving links from the mean path-loss profile at
// the current distances — deterministic, so mobility epochs can rebuild
// them without consuming randomness.
func meanLinks(env *testbed.Testbed, aps []testbed.Point, pos testbed.Point) []testbed.Link {
	row := make([]testbed.Link, len(aps))
	for a := range aps {
		d := testbed.Dist(aps[a], pos)
		row[a] = env.LinkAtSNR(env.MeanSNRdB(d), d)
	}
	return row
}

// bestCell returns the cell whose nearest AP is closest to p.
func (t *scenTopo) bestCell(p testbed.Point) int {
	best, bd := 0, math.Inf(1)
	for ci, aps := range t.cellAPs {
		for _, ap := range aps {
			if d := testbed.Dist(ap, p); d < bd {
				bd, best = d, ci
			}
		}
	}
	return best
}

// instantiate builds a fresh lasthop.Cell for one scheme run, with its
// own copies of the position/link rows (a mobility run mutates them, and
// both schemes must start from the same placement), the spec's traffic
// attached, and — under mobility — the per-epoch drift wired up. The
// returned counter accumulates serving-cell handoffs.
func (t *scenTopo) instantiate(sp *scenario.Spec, env *testbed.Testbed, m mac.Params,
	model netsim.InterferenceModel, ratePps float64) (lasthop.Cell, *int) {
	n := len(t.clients)
	links := make([][]testbed.Link, n)
	apPos := make([][]testbed.Point, n)
	clientPos := make([]testbed.Point, n)
	cur := make([]scenClient, n)
	copy(cur, t.clients)
	for c := range cur {
		links[c] = append([]testbed.Link(nil), cur[c].links...)
		apPos[c] = t.cellAPs[cur[c].cell]
		clientPos[c] = cur[c].pos
	}
	cell := lasthop.Cell{
		Mac:                m,
		PayloadBytes:       sp.Traffic.PayloadBytes,
		Links:              links,
		APPos:              apPos,
		ClientPos:          clientPos,
		CSRangeM:           sp.Topology.CSRangeM,
		InterferenceRangeM: sp.Topology.InterferenceRangeM,
		Model:              model,
		Env:                env,
		WindowSec:          sp.Traffic.WindowSec,
		Traffic: func(client int) netsim.TrafficConfig {
			return scenarioTraffic(sp, ratePps, client)
		},
	}
	handoffs := new(int)
	if sp.Mobility != nil {
		step := sp.Mobility.SpeedMps * sp.Mobility.EpochSec
		cell.MobilityEpochSec = sp.Mobility.EpochSec
		cell.MoveClients = func(float64) {
			for c := range cur {
				cur[c].pos.X += step
				if best := t.bestCell(cur[c].pos); best != cur[c].cell {
					cur[c].cell = best
					*handoffs++
				}
				aps := t.cellAPs[cur[c].cell]
				apPos[c] = aps
				links[c] = meanLinks(env, aps, cur[c].pos)
				clientPos[c] = cur[c].pos
			}
		}
	}
	return cell, handoffs
}

// runScenarioScheme runs one serving scheme over an instantiated cell.
func runScenarioScheme(cell lasthop.Cell, scheme string, rng *rand.Rand) lasthop.CellResult {
	if scheme == scenario.SchemeSingle {
		return cell.RunBestSingleAP(rng)
	}
	return cell.RunJoint(rng)
}

// scenTrial is one (placement, load) trial's per-scheme outcome.
type scenTrial struct {
	goodputBps []float64
	arrived    []int
	delivered  []int
	expired    []int
	abandoned  []int
	handoffs   int
}

// runScenarioTrial builds one placement and runs every scheme over it at
// the given per-client rate, bridging each scheme its own child RNG from
// the per-trial stream.
func runScenarioTrial(sp *scenario.Spec, env *testbed.Testbed, m mac.Params,
	model netsim.InterferenceModel, schemes []string, ratePps float64, rng *rand.Rand) scenTrial {
	topo := buildScenarioTopology(rng, env, sp)
	var tr scenTrial
	for _, scheme := range schemes {
		cell, handoffs := topo.instantiate(sp, env, m, model, ratePps)
		res := runScenarioScheme(cell, scheme, rand.New(rand.NewSource(rng.Int63()))) //sslint:allow detrand child RNG bridged from the per-trial stream; the parent draw is part of the contracted draw order
		tr.goodputBps = append(tr.goodputBps, res.AggregateBps)
		tr.arrived = append(tr.arrived, res.Arrived)
		tr.delivered = append(tr.delivered, res.Delivered)
		tr.expired = append(tr.expired, res.Expired)
		tr.abandoned = append(tr.abandoned, res.Abandoned)
		// The drift trajectory is deterministic and scheme-independent, so
		// one scheme's count stands for the trial.
		tr.handoffs = *handoffs
	}
	return tr
}

// reduceScenarioTrials folds one load point's trials into per-scheme
// stats and the joint/single gain.
func reduceScenarioTrials(schemes []string, trials []scenTrial, ratePps float64) ScenarioLoadPoint {
	pt := ScenarioLoadPoint{RatePps: ratePps}
	single, joint := -1, -1
	for si, scheme := range schemes {
		st := ScenarioSchemeStats{Scheme: scheme}
		var goodputs []float64
		for _, tr := range trials {
			goodputs = append(goodputs, tr.goodputBps[si]/1e6)
			st.Arrived += tr.arrived[si]
			st.Delivered += tr.delivered[si]
			st.Expired += tr.expired[si]
			st.Abandoned += tr.abandoned[si]
		}
		st.MedianGoodputMbps = dsp.Median(goodputs)
		pt.Stats = append(pt.Stats, st)
		if scheme == scenario.SchemeSingle {
			single = si
		} else {
			joint = si
		}
	}
	if single >= 0 && joint >= 0 {
		var gains []float64
		for _, tr := range trials {
			if tr.goodputBps[single] > 0 {
				gains = append(gains, tr.goodputBps[joint]/tr.goodputBps[single])
			}
		}
		pt.MedianGain = dsp.Median(gains)
	}
	return pt
}

// runScenarioArrivals sweeps the offered load: one engine grid over
// (rate, placement), every trial running each scheme over the same drawn
// topology.
func runScenarioArrivals(sp *scenario.Spec, ro ScenarioRunOptions) *ScenarioArrivalsResult {
	cfg := Profile80211()
	env := testbed.Mesh(cfg)
	m := mac.Default(cfg)
	model := netsim.NewRateAware(cfg, modem.StandardRates(), sp.Traffic.PayloadBytes)
	schemes := sp.SchemeList()
	rates := sp.Traffic.RateSweepPps
	if len(rates) == 0 {
		rates = []float64{sp.Traffic.RatePps}
	}
	placements := ro.shrink(sp.Topology.Placements)
	ec := engine.Config{Seed: ro.Seed, Workers: ro.Workers, Monitor: ro.Monitor}
	grid := engine.Grid(ec, len(rates), placements, func(pt, pl int, rng *rand.Rand) scenTrial {
		return runScenarioTrial(sp, env, m, model, schemes, rates[pt], rng)
	})
	res := &ScenarioArrivalsResult{}
	for pi, trials := range grid {
		res.Points = append(res.Points, reduceScenarioTrials(schemes, trials, rates[pi]))
	}
	return res
}

// runScenarioMobility runs the drifting-clients scenario: one engine map
// over placements at the spec's single rate.
func runScenarioMobility(sp *scenario.Spec, ro ScenarioRunOptions) *ScenarioMobilityResult {
	cfg := Profile80211()
	env := testbed.Mesh(cfg)
	m := mac.Default(cfg)
	model := netsim.NewRateAware(cfg, modem.StandardRates(), sp.Traffic.PayloadBytes)
	schemes := sp.SchemeList()
	placements := ro.shrink(sp.Topology.Placements)
	ec := engine.Config{Seed: ro.Seed, Workers: ro.Workers, Monitor: ro.Monitor}
	trials := engine.Map(ec, 0, placements, func(pl int, rng *rand.Rand) scenTrial {
		return runScenarioTrial(sp, env, m, model, schemes, sp.Traffic.RatePps, rng)
	})
	pt := reduceScenarioTrials(schemes, trials, sp.Traffic.RatePps)
	res := &ScenarioMobilityResult{Stats: pt.Stats, MedianGain: pt.MedianGain}
	var handoffs int
	for _, tr := range trials {
		handoffs += tr.handoffs
	}
	if n := len(trials) * sp.TotalClients(); n > 0 {
		res.HandoffsPerClient = float64(handoffs) / float64(n)
	}
	return res
}
