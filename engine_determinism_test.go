package sourcesync

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"testing"
)

// The engine's reproducibility contract: a figure's output is byte-identical
// at every worker count, because each trial's RNG derives from (seed, point,
// trial) rather than from a shared stream.
//
// The waveform experiments (fig12-16) are too slow for `go test -short`, so
// each full-size comparison below is paired with a fingerprint variant: a
// handful of trials, reduced to an FNV hash, cheap enough for the short
// path. The hash carries no diagnostic detail — its only job is to catch a
// worker-count divergence before the full run would.

// fingerprint reduces any experiment result to a stable 64-bit hash of its
// Go-syntax representation.
func fingerprint(v any) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%#v", v)
	return h.Sum64()
}

func TestFig12DeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("waveform experiment")
	}
	base := Fig12Options{Seed: 1, SNRsdB: []float64{6, 12, 25}, Trials: 10, Reps: 30}
	render := func(workers int) string {
		o := base
		o.Workers = workers
		return fmt.Sprintf("%#v", RunFig12(o))
	}
	serial := render(1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := render(workers); got != serial {
			t.Fatalf("workers=%d output differs from serial:\n%s\nvs\n%s", workers, got, serial)
		}
	}
}

func TestFig13DeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("waveform experiment")
	}
	base := Fig13Options{Seed: 2, CPsNs: []float64{0, 156, 469}, FramesPerCP: 3, SNRdB: 25}
	render := func(workers int) string {
		o := base
		o.Workers = workers
		return fmt.Sprintf("%#v", RunFig13(o))
	}
	serial := render(1)
	if got := render(4); got != serial {
		t.Fatalf("workers=4 output differs from serial:\n%s\nvs\n%s", got, serial)
	}
}

func TestFig14Fig15Fig16DeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("waveform experiment")
	}
	o14 := Fig14Options{Seed: 3, Draws: 40, Taps: 30}
	o15 := Fig15Options{Seed: 4, Placements: 8, Frames: 2}
	render := func(workers int) string {
		a, b := o14, o15
		a.Workers, b.Workers = workers, workers
		return fmt.Sprintf("%#v|%#v|%#v", RunFig14(a), RunFig15(b), RunFig16(b))
	}
	serial := render(1)
	if got := render(4); got != serial {
		t.Fatal("fig14-16 parallel output differs from serial")
	}
}

func TestFig13FingerprintDeterministicShort(t *testing.T) {
	base := Fig13Options{Seed: 2, CPsNs: []float64{0, 469}, FramesPerCP: 1, SNRdB: 25}
	render := func(workers int) uint64 {
		o := base
		o.Workers = workers
		return fingerprint(RunFig13(o))
	}
	serial := render(1)
	if got := render(4); got != serial {
		t.Fatalf("fig13 fingerprint differs: workers=4 %x vs serial %x", got, serial)
	}
}

func TestFig14Fig15Fig16FingerprintDeterministicShort(t *testing.T) {
	o14 := Fig14Options{Seed: 3, Draws: 6, Taps: 10}
	o15 := Fig15Options{Seed: 4, Placements: 2, Frames: 1}
	render := func(workers int) uint64 {
		a, b := o14, o15
		a.Workers, b.Workers = workers, workers
		return fingerprint([]any{RunFig14(a), RunFig15(b), RunFig16(b)})
	}
	serial := render(1)
	if got := render(4); got != serial {
		t.Fatalf("fig14-16 fingerprint differs: workers=4 %x vs serial %x", got, serial)
	}
}

func TestCellCrossTrafficDeterministicAcrossWorkerCounts(t *testing.T) {
	oc := CellOptions{Seed: 9, Placements: 4, Clients: 8, APs: 2, Packets: 40, Payload: 1460}
	ox := CrossTrafficOptions{Seed: 10, Topologies: 3, Packets: 40, CrossFlows: 2,
		CrossPackets: 50, Payload: 1000, RateMbps: 12, Probes: 30}
	oc.Workers, ox.Workers = 1, 1
	wantC := fmt.Sprintf("%#v", RunCell(oc))
	wantX := fmt.Sprintf("%#v", RunCrossTraffic(ox))
	oc.Workers, ox.Workers = 4, 4
	if got := fmt.Sprintf("%#v", RunCell(oc)); got != wantC {
		t.Fatalf("cell parallel output differs from serial")
	}
	if got := fmt.Sprintf("%#v", RunCrossTraffic(ox)); got != wantX {
		t.Fatalf("crosstraffic parallel output differs from serial")
	}
}

func TestSpatialCrossTrafficDeterministicAcrossWorkerCounts(t *testing.T) {
	// The spatial-mesh variant: stretched floor, finite carrier sense,
	// SampleRate-adapted cross flows, rate-aware interference — the full
	// new-model pipeline must still reduce byte-identically at any worker
	// count.
	o := SpatialCrossTrafficOptions()
	o.Topologies, o.Packets, o.CrossPackets, o.Probes = 3, 40, 50, 30
	o.Workers = 1
	want := fmt.Sprintf("%#v", RunCrossTraffic(o))
	o.Workers = 4
	if got := fmt.Sprintf("%#v", RunCrossTraffic(o)); got != want {
		t.Fatalf("crosstraffic-spatial parallel output differs from serial:\n%s\nvs\n%s", got, want)
	}
}

func TestWindowModeAndCSRangeSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	// Fixed-time-window saturation (RunUntil) plus the carrier-sense-range
	// sweep, both under the default rate-aware model.
	o := CellSweepOptions{Seed: 13, Placements: 3, Cells: 2, APsPerCell: 2,
		ClientsPer: []int{2}, Packets: 20, Payload: 1460, CSRangeM: 30, WindowSec: 0.05}
	oc := CellOptions{Seed: 14, Placements: 4, Clients: 4, APs: 2, Packets: 20,
		Payload: 1460, WindowSec: 0.05}
	o.Workers, oc.Workers = 1, 1
	want := fmt.Sprintf("%#v", RunCSRangeSweep(o, []float64{20, 40}, 2))
	wantC := fmt.Sprintf("%#v", RunCell(oc))
	o.Workers, oc.Workers = 4, 4
	if got := fmt.Sprintf("%#v", RunCSRangeSweep(o, []float64{20, 40}, 2)); got != want {
		t.Fatalf("CS-range sweep parallel output differs from serial:\n%s\nvs\n%s", got, want)
	}
	if got := fmt.Sprintf("%#v", RunCell(oc)); got != wantC {
		t.Fatalf("window-mode cell parallel output differs from serial:\n%s\nvs\n%s", got, wantC)
	}
}

func TestCellSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	o := CellSweepOptions{Seed: 11, Placements: 3, Cells: 2, APsPerCell: 2,
		ClientsPer: []int{1, 4}, Packets: 20, Payload: 1460, CSRangeM: 30, CaptureDB: 10}
	o.Workers = 1
	want := fmt.Sprintf("%#v", RunCellSweep(o))
	wantC := fmt.Sprintf("%#v", RunCellCountSweep(o, []int{1, 3}, 2))
	o.Workers = 4
	if got := fmt.Sprintf("%#v", RunCellSweep(o)); got != want {
		t.Fatalf("cellsweep parallel output differs from serial:\n%s\nvs\n%s", got, want)
	}
	if got := fmt.Sprintf("%#v", RunCellCountSweep(o, []int{1, 3}, 2)); got != wantC {
		t.Fatalf("cell-count sweep parallel output differs from serial:\n%s\nvs\n%s", got, wantC)
	}
}

func TestFig17Fig18DeterministicAcrossWorkerCounts(t *testing.T) {
	o17 := Fig17Options{Seed: 5, Placements: 8, Packets: 100, Payload: 1460}
	o18 := Fig18Options{Seed: 6, Topologies: 5, Packets: 60, Payload: 1000, RateMbps: 12, Probes: 30}
	o17.Workers, o18.Workers = 1, 1
	want17 := fmt.Sprintf("%#v", RunFig17(o17))
	want18 := fmt.Sprintf("%#v", RunFig18(o18))
	o17.Workers, o18.Workers = 0, 0
	if got := fmt.Sprintf("%#v", RunFig17(o17)); got != want17 {
		t.Fatalf("Fig17 parallel output differs from serial")
	}
	if got := fmt.Sprintf("%#v", RunFig18(o18)); got != want18 {
		t.Fatalf("Fig18 parallel output differs from serial")
	}
}

func TestMetroDeterministicAcrossWorkerCounts(t *testing.T) {
	// A quick-size city: 3x3 cells, two density points, bounded
	// interference scans — the full indexed-scheduler pipeline (spatial
	// hash, event heap, per-flow interference pruning) must reduce
	// byte-identically at any worker count.
	o := MetroOptions{Seed: 17, Placements: 2, CellsX: 3, CellsY: 3, APsPerCell: 2,
		ClientsPer: []int{2, 4}, Packets: 10, Payload: 1460,
		CSRangeM: 45, InterferenceRangeM: 150}
	o.Workers = 1
	want := fmt.Sprintf("%#v", RunMetro(o))
	o.Workers = 4
	if got := fmt.Sprintf("%#v", RunMetro(o)); got != want {
		t.Fatalf("metro parallel output differs from serial:\n%s\nvs\n%s", got, want)
	}
}
