package sourcesync

import (
	"math/rand"
	"sort"

	"repro/internal/dsp"
	"repro/internal/engine"
	"repro/internal/etx"
	"repro/internal/exor"
	"repro/internal/lasthop"
	"repro/internal/mac"
	"repro/internal/modem"
	"repro/internal/permodel"
	"repro/internal/testbed"
)

// ---------------------------------------------------------------- Fig. 17

// Fig17Options configures the last-hop diversity experiment (§8.3).
type Fig17Options struct {
	Seed       int64
	Placements int // random AP/AP/client placements
	Packets    int // downlink packets per run
	Payload    int
	// Workers bounds the engine's parallelism: 0 uses one worker per CPU,
	// 1 runs serially. Results are identical either way.
	Workers int
	// Monitor optionally observes the run (trial progress) and lets the
	// caller cancel it cooperatively; a canceled run's output must be
	// discarded. Nil is free. See engine.Monitor.
	Monitor *engine.Monitor
}

// DefaultFig17Options returns the parameters used by ssbench.
func DefaultFig17Options() Fig17Options {
	return Fig17Options{Seed: 5, Placements: 40, Packets: 400, Payload: 1460}
}

// Fig17Result carries the two throughput CDFs and their median gain.
type Fig17Result struct {
	SingleMbps []float64 // sorted, one per placement (best single AP)
	JointMbps  []float64 // sorted, same placements with SourceSync
	MedianGain float64
}

// RunFig17 regenerates Figure 17: CDFs of client throughput using the best
// single AP versus both APs jointly with SourceSync (paper: median 1.57x).
func RunFig17(o Fig17Options) Fig17Result {
	cfg := Profile80211()
	env := testbed.Mesh(cfg)
	m := mac.Default(cfg)
	ec := engine.Config{Seed: o.Seed, Workers: o.Workers, Monitor: o.Monitor}

	type plRes struct{ singleBps, jointBps float64 }
	rows := engine.Map(ec, 0, o.Placements, func(pl int, rng *rand.Rand) plRes {
		client := env.RandomPoint(rng)
		// Two APs with usable-but-not-saturated links, per the paper's
		// motivation (clients with poor connectivity to multiple nearby
		// APs): both land where the rate table still has headroom.
		ap1 := nearbyPoint(rng, env, client, 8, 25)
		ap2 := nearbyPoint(rng, env, client, 8, 25)
		c := lasthop.Config{
			Mac:          m,
			PayloadBytes: o.Payload,
			APLinks: []testbed.Link{
				env.NewLink(rng, ap1, client),
				env.NewLink(rng, ap2, client),
			},
			Packets: o.Packets,
		}
		single := c.RunBestSingleAP(rand.New(rand.NewSource(rng.Int63()))) //sslint:allow detrand child RNG bridged from the per-trial stream; the parent draw is part of the contracted draw order
		joint := c.RunJoint(rand.New(rand.NewSource(rng.Int63())))         //sslint:allow detrand child RNG bridged from the per-trial stream; the parent draw is part of the contracted draw order
		return plRes{single.ThroughputBps, joint.ThroughputBps}
	})

	var singles, joints, gains []float64
	for _, r := range rows {
		singles = append(singles, r.singleBps/1e6)
		joints = append(joints, r.jointBps/1e6)
		if r.singleBps > 0 {
			gains = append(gains, r.jointBps/r.singleBps)
		}
	}
	sortFloats(singles)
	sortFloats(joints)
	return Fig17Result{
		SingleMbps: singles,
		JointMbps:  joints,
		MedianGain: dsp.Median(gains),
	}
}

// nearbyPoint draws a point between minDist and maxDist meters of ref.
// Attempts are bounded: an unsatisfiable annulus (e.g. a reference off the
// floor) panics instead of spinning forever.
func nearbyPoint(rng *rand.Rand, env *testbed.Testbed, ref testbed.Point, minDist, maxDist float64) testbed.Point {
	return env.RandomPointWhere(rng, 100000, func(p testbed.Point) bool {
		d := testbed.Dist(p, ref)
		return d >= minDist && d <= maxDist
	})
}

// ---------------------------------------------------------------- Fig. 18

// Fig18Options configures the opportunistic routing experiment (§8.4).
type Fig18Options struct {
	Seed       int64
	Topologies int
	Packets    int
	Payload    int
	RateMbps   int // 6 or 12, per the paper
	Probes     int // measurement-phase probes per link
	// SpanScale stretches the mesh so links sit near the chosen rate's
	// waterfall (the paper picked topologies with lossy links at each
	// rate). Zero selects a per-rate default: the more robust 6 Mbps rate
	// needs a wider mesh to see the same loss rates.
	SpanScale float64
	// Workers bounds the engine's parallelism: 0 uses one worker per CPU,
	// 1 runs serially. Results are identical either way.
	Workers int
	// Monitor optionally observes the run (trial progress) and lets the
	// caller cancel it cooperatively; a canceled run's output must be
	// discarded. Nil is free. See engine.Monitor.
	Monitor *engine.Monitor
}

// DefaultFig18Options returns the parameters used by ssbench.
func DefaultFig18Options(rateMbps int) Fig18Options {
	o := Fig18Options{
		Seed: 6, Topologies: 20, Packets: 150, Payload: 1000,
		RateMbps: rateMbps, Probes: 60,
	}
	return o
}

// Fig18Result carries the three throughput CDFs and median gains.
type Fig18Result struct {
	RateMbps       int
	SinglePathMbps []float64
	ExORMbps       []float64
	SourceSyncMbps []float64
	// Median gains over the per-topology ratios.
	GainExOROverSP float64
	GainSSOverExOR float64
	GainSSOverSP   float64
}

// RunFig18 regenerates Figure 18 at one bit rate: CDFs of throughput for
// single-path routing, ExOR, and ExOR+SourceSync over random 5-node
// topologies (source, three relays, destination).
func RunFig18(o Fig18Options) Fig18Result {
	cfg := Profile80211()
	env := testbed.Mesh(cfg)
	scale := o.SpanScale
	if scale == 0 {
		scale = 1.0
		if o.RateMbps <= 6 {
			scale = 1.18
		}
	}
	env.Width *= scale
	rate, err := modem.RateByMbps(o.RateMbps)
	if err != nil {
		panic(err)
	}
	m := mac.Default(cfg)
	ec := engine.Config{Seed: o.Seed, Workers: o.Workers, Monitor: o.Monitor}

	type tpRes struct{ spBps, exBps, ssBps float64 }
	rows := engine.Map(ec, 0, o.Topologies, func(tp int, rng *rand.Rand) tpRes {
		topo := randomMeshTopology(rng, env, false, nil)
		meas := topo.Measure(rng, rate, o.Payload, o.Probes, 0.1)
		sim := &exor.Sim{Topo: topo, Meas: meas, Mac: m, Rate: rate, Payload: o.Payload}
		sp := sim.Run(rand.New(rand.NewSource(rng.Int63())), exor.SinglePath, o.Packets)     //sslint:allow detrand child RNG bridged from the per-trial stream; the parent draw is part of the contracted draw order
		ex := sim.Run(rand.New(rand.NewSource(rng.Int63())), exor.ExOR, o.Packets)           //sslint:allow detrand child RNG bridged from the per-trial stream; the parent draw is part of the contracted draw order
		ss := sim.Run(rand.New(rand.NewSource(rng.Int63())), exor.ExORSourceSync, o.Packets) //sslint:allow detrand child RNG bridged from the per-trial stream; the parent draw is part of the contracted draw order
		return tpRes{sp.ThroughputBps, ex.ThroughputBps, ss.ThroughputBps}
	})

	res := Fig18Result{RateMbps: o.RateMbps}
	var gEx, gSS, gSSsp []float64
	for _, r := range rows {
		res.SinglePathMbps = append(res.SinglePathMbps, r.spBps/1e6)
		res.ExORMbps = append(res.ExORMbps, r.exBps/1e6)
		res.SourceSyncMbps = append(res.SourceSyncMbps, r.ssBps/1e6)
		if r.spBps > 0 {
			gEx = append(gEx, r.exBps/r.spBps)
			gSSsp = append(gSSsp, r.ssBps/r.spBps)
		}
		if r.exBps > 0 {
			gSS = append(gSS, r.ssBps/r.exBps)
		}
	}
	sortFloats(res.SinglePathMbps)
	sortFloats(res.ExORMbps)
	sortFloats(res.SourceSyncMbps)
	res.GainExOROverSP = dsp.Median(gEx)
	res.GainSSOverExOR = dsp.Median(gSS)
	res.GainSSOverSP = dsp.Median(gSSsp)
	return res
}

// randomMeshTopology draws the paper's 5-node shape: source and destination
// far apart, three relays placed between them. With spread false the relays
// sit closer to the source, so the relay -> destination hop operates near
// the rate's waterfall — the lossy regime where sender diversity pays (the
// direct src -> dst link is essentially dead). With spread true (the
// spatial-mesh cross-traffic variant) the relays are staggered across the
// whole span, so relay-to-relay cross flows on a stretched floor land in
// different carrier-sense cells. Both shapes consume the same RNG draws in
// the same order, so spread false stays draw-for-draw identical to the
// historical topology.
//
// A non-nil routable predicate makes the placement ETX-aware: candidate
// topologies whose shadowing draws left no usable source -> destination
// route redraw the three relays (source and destination stay put) and
// their links, up to meshRelayRedraws times. The predicate must be a pure
// function of the drawn topology — it may not consume RNG draws — so a
// first-draw-routable topology costs exactly the historical draw
// sequence. Callers needing draw-for-draw identity with the historical
// topologies (fig18, the non-spatial cross-traffic variant) pass nil.
func randomMeshTopology(rng *rand.Rand, env *testbed.Testbed, spread bool, routable func(*exor.Topology) bool) *exor.Topology {
	w, h := env.Width, env.Height
	src := testbed.Point{X: rng.Float64() * 0.08 * w, Y: rng.Float64() * h}
	dst := testbed.Point{X: (0.92 + rng.Float64()*0.08) * w, Y: rng.Float64() * h}
	draw := func() *exor.Topology {
		pts := []testbed.Point{src}
		for r := 0; r < 3; r++ {
			lo := 0.25
			if spread {
				lo = 0.15 + 0.25*float64(r)
			}
			pts = append(pts, testbed.Point{
				X: (lo + rng.Float64()*0.2) * w,
				Y: rng.Float64() * h,
			})
		}
		pts = append(pts, dst)
		return exor.NewTopology(rng, env, pts)
	}
	topo := draw()
	if routable != nil {
		// Bounded redraws: a floor drawn hostile everywhere keeps the last
		// candidate rather than spinning, so the run stays deterministic
		// and finite either way.
		for tries := 0; !routable(topo) && tries < meshRelayRedraws; tries++ {
			topo = draw()
		}
	}
	return topo
}

// meshRelayRedraws bounds ETX-aware relay re-placement per topology.
const meshRelayRedraws = 20

// meshRoutablePredicate builds the ETX routability proxy for spread mesh
// placements: each drawn link gets the delivery probability of its static
// (post-shadowing) average SNR under the flat-channel PER model — a pure
// function of the topology, no probe draws — sub-10% links are pruned the
// way the routing measurement phase prunes them, and a candidate counts
// as routable when a finite-ETX path connects source to destination.
func meshRoutablePredicate(cfg *modem.Config, rate modem.Rate, payloadBytes int) func(*exor.Topology) bool {
	return func(t *exor.Topology) bool {
		n := t.N()
		g := etx.NewGraph(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				p := 1 - permodel.FlatPER(cfg, rate, payloadBytes, t.Links[i][j].SNRdB)
				if p < 0.1 {
					continue
				}
				g.AddLink(i, j, etx.LinkETX(p, p))
			}
		}
		path, _ := g.ShortestPath(0, n-1)
		return path != nil
	}
}

func sortFloats(x []float64) { sort.Float64s(x) }
