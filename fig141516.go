package sourcesync

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/engine"
	"repro/internal/modem"
	"repro/internal/phy"
	"repro/internal/testbed"
)

// ---------------------------------------------------------------- Fig. 14

// Fig14Options configures the delay-spread measurement.
type Fig14Options struct {
	Seed  int64
	Draws int // channel realizations averaged
	Taps  int // number of tap indices reported
	// Workers bounds the engine's parallelism: 0 uses one worker per CPU,
	// 1 runs serially. Results are identical either way.
	Workers int
	// Monitor optionally observes the run (trial progress) and lets the
	// caller cancel it cooperatively; a canceled run's output must be
	// discarded. Nil is free. See engine.Monitor.
	Monitor *engine.Monitor
}

// DefaultFig14Options returns the parameters used by ssbench.
func DefaultFig14Options() Fig14Options { return Fig14Options{Seed: 3, Draws: 200, Taps: 70} }

// Fig14Point is the average power of one channel tap.
type Fig14Point struct {
	TapIdx int
	Power  float64 // |h|^2, normalized so tap 0 averages 1
}

// RunFig14 regenerates Figure 14: the time-domain power-delay profile of a
// single sender's channel on the WiGLAN profile. The paper's channel shows
// ~15 significant taps (117 ns at 128 MHz).
func RunFig14(o Fig14Options) []Fig14Point {
	cfg := ProfileWiGLAN()
	ec := engine.Config{Seed: o.Seed, Workers: o.Workers, Monitor: o.Monitor}
	draws := engine.Map(ec, 0, o.Draws, func(d int, rng *rand.Rand) []float64 {
		m := channel.NewIndoor(rng, cfg.SampleRateHz, 45, 3)
		tap := make([]float64, o.Taps)
		for i, p := range m.PowerDelayProfile() {
			if i < o.Taps {
				tap[i] = p
			}
		}
		return tap
	})
	// Accumulate in draw order so the float sum is worker-count independent.
	acc := make([]float64, o.Taps)
	for _, tap := range draws {
		for i, p := range tap {
			acc[i] += p
		}
	}
	norm := acc[0] / float64(o.Draws)
	out := make([]Fig14Point, o.Taps)
	for i := range acc {
		out[i] = Fig14Point{TapIdx: i, Power: acc[i] / float64(o.Draws) / norm}
	}
	return out
}

// SignificantTaps counts taps above the given fraction of the strongest tap
// (the paper's "~15 significant taps" metric at 1%).
func SignificantTaps(points []Fig14Point, fraction float64) int {
	var peak float64
	for _, p := range points {
		if p.Power > peak {
			peak = p.Power
		}
	}
	n := 0
	for _, p := range points {
		if p.Power >= peak*fraction {
			n++
		}
	}
	return n
}

// ---------------------------------------------------------- Figs. 15 & 16

// Fig15Options configures the power/diversity gain measurement (§8.2).
type Fig15Options struct {
	Seed       int64
	Placements int // random transmitter-pair placements
	Frames     int // joint frames per placement
	// Workers bounds the engine's parallelism: 0 uses one worker per CPU,
	// 1 runs serially. Results are identical either way.
	Workers int
	// Monitor optionally observes the run (trial progress) and lets the
	// caller cancel it cooperatively; a canceled run's output must be
	// discarded. Nil is free. See engine.Monitor.
	Monitor *engine.Monitor
}

// DefaultFig15Options returns the parameters used by ssbench.
func DefaultFig15Options() Fig15Options { return Fig15Options{Seed: 4, Placements: 36, Frames: 2} }

// Fig15Row aggregates one SNR regime.
type Fig15Row struct {
	Regime       string
	SingleSNRdB  float64 // average single-sender SNR
	JointSNRdB   float64 // average composite SNR with SourceSync
	GainDB       float64
	Measurements int
}

// fig15Sample is one placement's measurement.
type fig15Sample struct {
	regime    testbed.Regime
	singleDB  float64
	jointDB   float64
	perBin1   map[int]float64
	perBin2   map[int]float64
	perBinSum map[int]float64
}

// RunFig15 regenerates Figure 15: average SNR per regime for a single
// sender versus joint SourceSync transmission (expected: 2-3 dB gain).
func RunFig15(o Fig15Options) []Fig15Row {
	samples := fig15Measure(o)
	rows := map[testbed.Regime]*Fig15Row{}
	counts := map[testbed.Regime]int{}
	var singleLin, jointLin map[testbed.Regime]float64
	singleLin = map[testbed.Regime]float64{}
	jointLin = map[testbed.Regime]float64{}
	for _, s := range samples {
		singleLin[s.regime] += dsp.FromDB(s.singleDB)
		jointLin[s.regime] += dsp.FromDB(s.jointDB)
		counts[s.regime]++
	}
	for _, reg := range []testbed.Regime{testbed.HighSNR, testbed.MediumSNR, testbed.LowSNR} {
		n := counts[reg]
		if n == 0 {
			continue
		}
		single := dsp.DB(singleLin[reg] / float64(n))
		joint := dsp.DB(jointLin[reg] / float64(n))
		rows[reg] = &Fig15Row{
			Regime: reg.String(), SingleSNRdB: single, JointSNRdB: joint,
			GainDB: joint - single, Measurements: n,
		}
	}
	var out []Fig15Row
	for _, reg := range []testbed.Regime{testbed.HighSNR, testbed.MediumSNR, testbed.LowSNR} {
		if r, ok := rows[reg]; ok {
			out = append(out, *r)
		}
	}
	return out
}

// Fig16Series is the per-subcarrier SNR profile of one regime.
type Fig16Series struct {
	Regime   string
	FreqMHz  []float64
	Sender1  []float64 // dB per subcarrier
	Sender2  []float64
	Joint    []float64
	Flatness struct {
		Sender1, Sender2, Joint float64 // std dev across subcarriers, dB
	}
}

// RunFig16 regenerates Figure 16: per-subcarrier SNR profiles for each
// sender alone and for the joint transmission. As in the paper, each regime
// shows one representative placement (the figure's point is that individual
// senders fade in different subcarriers while the joint profile is flat —
// averaging across placements would wash the fades out). The sample whose
// individual profiles are the most frequency-selective represents each
// regime.
func RunFig16(o Fig15Options) []Fig16Series {
	cfg := ProfileWiGLAN()
	samples := fig15Measure(o)
	best := map[testbed.Regime]*fig15Sample{}
	bestSel := map[testbed.Regime]float64{}
	toSeries := func(m map[int]float64) ([]int, []float64) {
		ks := make([]int, 0, len(m))
		for k := range m {
			ks = append(ks, k)
		}
		sort.Ints(ks)
		vals := make([]float64, len(ks))
		for i, k := range ks {
			vals[i] = dsp.DB(m[k])
		}
		return ks, vals
	}
	for i := range samples {
		s := &samples[i]
		_, v1 := toSeries(s.perBin1)
		_, v2 := toSeries(s.perBin2)
		sel := dsp.StdDev(v1) + dsp.StdDev(v2)
		if sel > bestSel[s.regime] {
			bestSel[s.regime] = sel
			best[s.regime] = s
		}
	}
	var out []Fig16Series
	spacing := cfg.SubcarrierSpacingHz() / 1e6
	for _, reg := range []testbed.Regime{testbed.HighSNR, testbed.MediumSNR, testbed.LowSNR} {
		s := best[reg]
		if s == nil {
			continue
		}
		ks, v1 := toSeries(s.perBin1)
		_, v2 := toSeries(s.perBin2)
		_, vj := toSeries(s.perBinSum)
		ser := Fig16Series{Regime: reg.String()}
		for _, k := range ks {
			ser.FreqMHz = append(ser.FreqMHz, float64(k)*spacing)
		}
		ser.Sender1 = v1
		ser.Sender2 = v2
		ser.Joint = vj
		ser.Flatness.Sender1 = dsp.StdDev(v1)
		ser.Flatness.Sender2 = dsp.StdDev(v2)
		ser.Flatness.Joint = dsp.StdDev(vj)
		out = append(out, ser)
	}
	return out
}

// fig15Measure runs the underlying placements for Figs. 15 and 16: a grid
// of placements x frames on the engine. The per-placement SNR draw comes
// from the placement's PointRNG so every frame of a placement agrees on it.
func fig15Measure(o Fig15Options) []fig15Sample {
	cfg := ProfileWiGLAN()
	ec := engine.Config{Seed: o.Seed, Workers: o.Workers, Monitor: o.Monitor}
	type frameRes struct {
		s  fig15Sample
		ok bool
	}
	// Sweep the operating point so all regimes are populated; both senders
	// within a couple dB of each other, as in a placed pair. The sweep is
	// in per-sample SNR; the per-subcarrier SNR the receiver measures sits
	// ~8 dB higher on this profile (the signal occupies 20 of 128 bins),
	// so the range below covers the paper's <6 / 6-12 / >12 dB regimes.
	// Each placement's SNR pair comes from its PointRNG so all its frames
	// agree on it; precomputed here rather than redrawn per frame.
	snr1 := make([]float64, o.Placements)
	snr2 := make([]float64, o.Placements)
	for pl := 0; pl < o.Placements; pl++ {
		prng := engine.PointRNG(o.Seed, pl)
		base := -14 + 24*float64(pl)/float64(o.Placements)
		snr1[pl] = base + prng.Float64()*2 - 1
		snr2[pl] = base + prng.Float64()*2 - 1
	}
	grid := engine.Grid(ec, o.Placements, o.Frames, func(pl, f int, rng *rand.Rand) frameRes {
		s, ok := fig15Frame(rng, cfg, snr1[pl], snr2[pl])
		return frameRes{s, ok}
	})
	var out []fig15Sample
	for _, row := range grid {
		for _, r := range row {
			if r.ok {
				out = append(out, r.s)
			}
		}
	}
	return out
}

// fig15Frame runs one joint frame and extracts SNR measurements.
func fig15Frame(rng *rand.Rand, cfg *Config, snr1, snr2 float64) (fig15Sample, bool) {
	p := phy.JointFrameParams{
		Cfg: cfg, Rate: modem.Rate{Mod: modem.QPSK, Code: modem.Rate12},
		DataCP: cfg.CPLen, PayloadLen: 40, Seed: 0x5d, NumCo: 1,
		LeadID: 2, PacketID: 0x15,
	}
	mk := func() *channel.Multipath { return channel.NewIndoor(rng, cfg.SampleRateHz, 30, 3) }
	noise := channel.NoisePowerForSNR(cePower(cfg), 0) // unit-SNR reference
	g1 := math.Sqrt(dsp.FromDB(snr1))
	g2 := math.Sqrt(dsp.FromDB(snr2))
	dLeadCo := 1 + rng.Float64()*8
	tLeadRx := 1 + rng.Float64()*10
	tCoRx := 1 + rng.Float64()*10
	sim := &phy.JointSimConfig{
		P:        p,
		Lead:     phy.LeadSim{ResidCFO: smallResid(rng, cfg), Phase: rng.Float64() * 2 * math.Pi},
		LeadToCo: []phy.Link{{Gain: 4, Delay: dLeadCo, Path: mk()}}, // inter-sender link strong
		LeadToRx: phy.Link{Gain: g1, Delay: tLeadRx, Path: mk()},
		CoToRx:   []phy.Link{{Gain: g2, Delay: tCoRx, Path: mk()}},
		Co: []phy.CoSenderSim{{
			Turnaround:       700,
			OscCFO:           channel.PPMToCFO((rng.Float64()*2-1)*20, 5.8e9, cfg.SampleRateHz),
			ResidCFO:         smallResid(rng, cfg),
			Phase:            rng.Float64() * 2 * math.Pi,
			EstDelayFromLead: dLeadCo,
			TxOffset:         tLeadRx - tCoRx,
			NoisePower:       noise,
			FFTBackoff:       3,
			DetectJitter:     38,
		}},
		NoiseRx: noise,
		Rng:     rng,
	}
	payload := make([]byte, p.PayloadLen)
	rng.Read(payload)
	run, err := sim.Run(payload)
	if err != nil || !run.CoJoined[0] {
		return fig15Sample{}, false
	}
	rx := &phy.JointReceiver{Cfg: cfg, FFTBackoff: 3}
	res, err := rx.Receive(run.RxWave, 0)
	if err != nil || !res.ActiveCo[0] {
		return fig15Sample{}, false
	}
	s1 := res.SenderSNR(0)
	s2 := res.SenderSNR(1)
	j := res.CompositeSNR()
	// Sum in sorted bin order: ranging over the map directly would add the
	// floats in randomized iteration order and perturb the last ulp from
	// run to run, breaking the byte-identical-output guarantee.
	avg := func(m map[int]float64) float64 {
		ks := make([]int, 0, len(m))
		for k := range m {
			ks = append(ks, k)
		}
		sort.Ints(ks)
		var lin float64
		for _, k := range ks {
			lin += m[k]
		}
		return dsp.DB(lin / float64(len(m)))
	}
	single := dsp.DB((dsp.FromDB(avg(s1)) + dsp.FromDB(avg(s2))) / 2)
	return fig15Sample{
		regime:    testbed.ClassifyRegime(single),
		singleDB:  single,
		jointDB:   avg(j),
		perBin1:   s1,
		perBin2:   s2,
		perBinSum: j,
	}, true
}
