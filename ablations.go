package sourcesync

import (
	"math"
	"math/rand"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/engine"
	"repro/internal/modem"
	"repro/internal/phy"
	"repro/internal/sls"
)

// Every trial-based runner in this file takes a workers argument with the
// engine's convention: 0 uses one worker per CPU, 1 runs serially. Outputs
// are identical at every worker count. RunOverheadTable is closed-form and
// has no trials to parallelize.

// ------------------------------------------------------- §4.4 overhead

// OverheadRow is one line of the synchronization-overhead table.
type OverheadRow struct {
	Senders          int
	OverheadFraction float64
	FrameAirtimeUs   float64
}

// RunOverheadTable computes the §4.4 overhead numbers: SIFS + 2 CE symbols
// per co-sender, for 1460-byte packets at 12 Mbps.
func RunOverheadTable() []OverheadRow {
	cfg := Profile80211()
	rate, _ := modem.RateByMbps(12)
	var out []OverheadRow
	for senders := 2; senders <= 5; senders++ {
		p := phy.JointFrameParams{
			Cfg: cfg, Rate: rate, DataCP: cfg.CPLen,
			PayloadLen: 1460, Seed: 1, NumCo: senders - 1,
		}
		out = append(out, OverheadRow{
			Senders:          senders,
			OverheadFraction: p.OverheadFraction(),
			FrameAirtimeUs:   p.AirtimeSeconds() * 1e6,
		})
	}
	return out
}

// ----------------------------------------- detection-delay premise (§4.2a)

// DetDelayPoint summarizes the packet-detection delay distribution at one
// SNR: the paper's premise that detection instants vary by hundreds of ns
// and depend on SNR.
type DetDelayPoint struct {
	SNRdB    float64
	MeanNs   float64
	StdNs    float64
	P95Ns    float64
	Detected int
	Missed   int
}

// RunDetDelay measures the coarse packet-detection delay (detector firing
// instant minus true first sample) across SNRs on the WiGLAN profile.
func RunDetDelay(seed int64, snrs []float64, trials, workers int) []DetDelayPoint {
	cfg := ProfileWiGLAN()
	p := modem.FrameParams{
		Cfg: cfg, Rate: modem.Rate{Mod: modem.BPSK, Code: modem.Rate12},
		CP: cfg.CPLen, PayloadLen: 20, ScramblerSeed: 0x5d,
	}
	nsPerSample := 1e9 / cfg.SampleRateHz
	ec := engine.Config{Seed: seed, Workers: workers}

	type detTrial struct {
		delayNs float64
		ok      bool
	}
	grid := engine.Grid(ec, len(snrs), trials, func(pt, t int, rng *rand.Rand) detTrial {
		payload := make([]byte, p.PayloadLen)
		rng.Read(payload)
		wave := modem.BuildFrame(p, payload)
		m := channel.NewIndoor(rng, cfg.SampleRateHz, 30, 6)
		faded := m.Apply(wave)
		sig := dsp.MeanPower(faded)
		noise := channel.NoisePowerForSNR(sig, snrs[pt])
		const lead = 700
		buf := make([]complex128, lead+len(faded)+400)
		copy(buf[lead:], faded)
		channel.AddAWGN(rng, buf, noise)
		det := modem.DetectPacket(cfg, buf, 0, modem.DetectorOptions{})
		if !det.Detected || det.CoarseIdx < lead-2*cfg.NFFT {
			return detTrial{}
		}
		return detTrial{delayNs: float64(det.CoarseIdx-lead) * nsPerSample, ok: true}
	})

	var out []DetDelayPoint
	for i, snr := range snrs {
		var delays []float64
		missed := 0
		for _, tr := range grid[i] {
			if tr.ok {
				delays = append(delays, tr.delayNs)
			} else {
				missed++
			}
		}
		pt := DetDelayPoint{SNRdB: snr, Detected: len(delays), Missed: missed}
		if len(delays) > 0 {
			pt.MeanNs = dsp.Mean(delays)
			pt.StdNs = dsp.StdDev(delays)
			pt.P95Ns = dsp.Percentile(delays, 95)
		}
		out = append(out, pt)
	}
	return out
}

// ------------------------------------------------ ablation: slope window

// SlopeWindowResult compares the 3 MHz-windowed phase-slope delay estimator
// against a whole-band fit under frequency-selective fading.
type SlopeWindowResult struct {
	WindowedRMS  float64 // RMS delay-difference error, samples
	WholeBandRMS float64
	Draws        int
}

// RunAblationSlopeWindow measures why the paper fits slopes over windows
// narrower than the coherence bandwidth (§4.2a): over heavier multipath the
// windowed estimator's error on delay differences stays lower than the
// whole-band fit, which suffers unwrap errors across deep fades.
func RunAblationSlopeWindow(seed int64, draws, workers int) SlopeWindowResult {
	cfg := ProfileWiGLAN()
	ec := engine.Config{Seed: seed, Workers: workers}
	type sqErr struct{ w, b float64 }
	rows := engine.Map(ec, 0, draws, func(i int, rng *rand.Rand) sqErr {
		m := channel.NewIndoor(rng, cfg.SampleRateHz, 60, 0) // heavy NLOS multipath
		d1 := rng.Float64() * 3
		d2 := d1 + 1.5
		h1 := delayedChannel(cfg, m, d1)
		h2 := delayedChannel(cfg, m, d2)
		w := (sls.EstimateDelay(cfg, h2) - sls.EstimateDelay(cfg, h1)) - (d2 - d1)
		b := (sls.EstimateDelayWindowed(cfg, h2, 1e12) - sls.EstimateDelayWindowed(cfg, h1, 1e12)) - (d2 - d1)
		return sqErr{w: w * w, b: b * b}
	})
	var wErr, bErr float64
	for _, r := range rows {
		wErr += r.w
		bErr += r.b
	}
	return SlopeWindowResult{
		WindowedRMS:  math.Sqrt(wErr / float64(draws)),
		WholeBandRMS: math.Sqrt(bErr / float64(draws)),
		Draws:        draws,
	}
}

func delayedChannel(cfg *Config, m *channel.Multipath, d float64) []complex128 {
	h := m.FreqResponse(cfg.NFFT)
	dsp.PhaseRampDelay(h, d)
	used := map[int]bool{}
	for _, k := range cfg.UsedBins() {
		used[cfg.Bin(k)] = true
	}
	for b := range h {
		if !used[b] {
			h[b] = 0
		}
	}
	return h
}

// --------------------------------------------- ablation: naive combining

// NaiveCombiningResult compares worst-case effective SNR of STBC versus
// naive identical transmission across random relative phases (§6).
type NaiveCombiningResult struct {
	STBCWorstSNRdB  float64
	NaiveWorstSNRdB float64
	NaiveFailures   int // frames that produced no usable EVM at all
	Frames          int
}

// RunAblationNaiveCombining quantifies the Smart Combiner's value: with
// naive identical transmission some relative phases cancel destructively;
// with the Alamouti code the worst case stays near the best case. The phase
// sweep forms the engine grid's points and the two modes its trials; both
// modes deliberately draw from the frame's PointRNG rather than their own
// trial streams, so each phase point compares STBC against naive on the
// identical channel realization and payload — the comparison isolates the
// combining scheme, not the fading luck.
func RunAblationNaiveCombining(seed int64, frames, workers int) NaiveCombiningResult {
	cfg := ProfileWiGLAN()
	res := NaiveCombiningResult{Frames: frames}
	res.STBCWorstSNRdB = math.Inf(1)
	res.NaiveWorstSNRdB = math.Inf(1)
	ec := engine.Config{Seed: seed, Workers: workers}

	type frameRes struct {
		snrDB  float64
		ok     bool
		failed bool
	}
	grid := engine.Grid(ec, frames, 2, func(f, mode int, _ *rand.Rand) frameRes {
		rng := engine.PointRNG(seed, f)
		sim := fig13Sim(rng, cfg, cfg.CPLen, 25, false)
		if mode == 1 {
			sim.P.Combining = phy.CombineNaive
		}
		// Sweep the co-sender's oscillator phase across the circle.
		sim.Co[0].Phase = 2 * math.Pi * float64(f) / float64(frames)
		payload := make([]byte, sim.P.PayloadLen)
		rng.Read(payload)
		run, err := sim.Run(payload)
		if err != nil || !run.CoJoined[0] {
			return frameRes{}
		}
		rx := &phy.JointReceiver{Cfg: cfg, FFTBackoff: 3}
		out, err := rx.Receive(run.RxWave, 0)
		if err != nil || out.EVM <= 0 {
			return frameRes{failed: true}
		}
		return frameRes{snrDB: dsp.DB(1 / out.EVM), ok: true}
	})

	for f := 0; f < frames; f++ {
		for mode := 0; mode < 2; mode++ {
			r := grid[f][mode]
			if r.failed && mode == 1 {
				res.NaiveFailures++
			}
			if !r.ok {
				continue
			}
			if mode == 0 && r.snrDB < res.STBCWorstSNRdB {
				res.STBCWorstSNRdB = r.snrDB
			}
			if mode == 1 && r.snrDB < res.NaiveWorstSNRdB {
				res.NaiveWorstSNRdB = r.snrDB
			}
		}
	}
	return res
}

// ---------------------------------------------- ablation: pilot sharing

// PilotSharingResult compares per-sender pilot tracking against a single
// shared phase track under distinct residual CFOs (§5).
type PilotSharingResult struct {
	SharedPilotsEVM float64 // SourceSync design
	NaiveTrackEVM   float64 // single common phase track
	Frames          int
}

// RunAblationPilotSharing measures decoding quality with and without the
// paper's shared-pilot per-sender phase tracking when the two senders carry
// different residual frequency offsets.
func RunAblationPilotSharing(seed int64, frames, workers int) PilotSharingResult {
	cfg := ProfileWiGLAN()
	res := PilotSharingResult{Frames: frames}
	ec := engine.Config{Seed: seed, Workers: workers}

	type frameRes struct {
		sharedEVM, naiveEVM float64
	}
	rows := engine.Map(ec, 0, frames, func(f int, rng *rand.Rand) frameRes {
		sim := fig13Sim(rng, cfg, cfg.CPLen, 25, false)
		// Exaggerate the residual offsets so the divergence is visible in a
		// short frame; use a longer payload for drift to accumulate.
		sim.P.PayloadLen = 400
		sim.Lead.ResidCFO = channel.PPMToCFO(0.8, 5.8e9, cfg.SampleRateHz)
		sim.Co[0].ResidCFO = channel.PPMToCFO(-0.8, 5.8e9, cfg.SampleRateHz)
		payload := make([]byte, sim.P.PayloadLen)
		rng.Read(payload)
		run, err := sim.Run(payload)
		if err != nil || !run.CoJoined[0] {
			return frameRes{}
		}
		var fr frameRes
		shared := &phy.JointReceiver{Cfg: cfg, FFTBackoff: 3}
		if out, err := shared.Receive(run.RxWave, 0); err == nil && out.EVM > 0 {
			fr.sharedEVM = out.EVM
		}
		naive := &phy.JointReceiver{Cfg: cfg, FFTBackoff: 3, NaivePhaseTracking: true}
		if out, err := naive.Receive(run.RxWave, 0); err == nil && out.EVM > 0 {
			fr.naiveEVM = out.EVM
		}
		return fr
	})

	var sAcc, nAcc float64
	var sN, nN int
	for _, r := range rows {
		if r.sharedEVM > 0 {
			sAcc += r.sharedEVM
			sN++
		}
		if r.naiveEVM > 0 {
			nAcc += r.naiveEVM
			nN++
		}
	}
	if sN > 0 {
		res.SharedPilotsEVM = sAcc / float64(sN)
	}
	if nN > 0 {
		res.NaiveTrackEVM = nAcc / float64(nN)
	}
	return res
}

// ------------------------------------------------ ablation: multi-rx LP

// MultiRxLPResult compares the LP-optimized wait times against aligning to
// the first receiver only, over random multi-receiver delay configurations.
type MultiRxLPResult struct {
	LPMaxMisalign    float64 // mean over configs of worst-case misalignment, samples
	FirstRxMisalign  float64 // same when w aligns receiver 0 exactly
	Configurations   int
	ReceiversPerConf int
}

// RunAblationMultiRxLP quantifies §4.6: with several receivers, choosing
// wait times via the min-max LP lowers the worst-case misalignment (and
// hence the CP increase) relative to aligning at a single receiver.
func RunAblationMultiRxLP(seed int64, configs, receivers, workers int) MultiRxLPResult {
	res := MultiRxLPResult{Configurations: configs, ReceiversPerConf: receivers}
	ec := engine.Config{Seed: seed, Workers: workers}

	type cfgRes struct {
		lpMax, worst float64
		ok           bool
	}
	rows := engine.Map(ec, 0, configs, func(c int, rng *rand.Rand) cfgRes {
		tLead := make([]float64, receivers)
		tCo := [][]float64{make([]float64, receivers), make([]float64, receivers)}
		for k := 0; k < receivers; k++ {
			tLead[k] = rng.Float64() * 8
			tCo[0][k] = rng.Float64() * 8
			tCo[1][k] = rng.Float64() * 8
		}
		_, lpMax, err := sls.MultiReceiverWaits(tLead, tCo)
		if err != nil {
			return cfgRes{}
		}
		// First-receiver alignment: w_i = T_0 - t_i0.
		w0 := []float64{tLead[0] - tCo[0][0], tLead[0] - tCo[1][0]}
		worst := 0.0
		for k := 0; k < receivers; k++ {
			for i := 0; i < 2; i++ {
				if v := math.Abs(w0[i] + tCo[i][k] - tLead[k]); v > worst {
					worst = v
				}
			}
			if v := math.Abs((w0[0] + tCo[0][k]) - (w0[1] + tCo[1][k])); v > worst {
				worst = v
			}
		}
		return cfgRes{lpMax: lpMax, worst: worst, ok: true}
	})

	for _, r := range rows {
		if !r.ok {
			continue
		}
		res.LPMaxMisalign += r.lpMax / float64(configs)
		res.FirstRxMisalign += r.worst / float64(configs)
	}
	return res
}
