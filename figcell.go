package sourcesync

import (
	"math/rand"

	"repro/internal/dsp"
	"repro/internal/engine"
	"repro/internal/exor"
	"repro/internal/lasthop"
	"repro/internal/mac"
	"repro/internal/modem"
	"repro/internal/testbed"
)

// ----------------------------------------------------------------- cell

// CellOptions configures the multi-client WLAN cell experiment — §8.3
// scaled beyond the paper's single client: N clients with backlogged
// downlink traffic from M APs, all contending for one medium through
// internal/netsim.
type CellOptions struct {
	Seed       int64
	Placements int // random AP/client placements
	Clients    int // N clients sharing the cell
	APs        int // M APs serving it
	Packets    int // downlink packets per client
	Payload    int
	// Workers bounds the engine's parallelism: 0 uses one worker per CPU,
	// 1 runs serially. Results are identical either way.
	Workers int
}

// DefaultCellOptions returns the parameters used by ssbench: an 8-client,
// 2-AP cell.
func DefaultCellOptions() CellOptions {
	return CellOptions{Seed: 9, Placements: 20, Clients: 8, APs: 2, Packets: 120, Payload: 1460}
}

// CellExpResult carries the aggregate-throughput CDFs of the two serving
// modes and contention diagnostics.
type CellExpResult struct {
	SingleAggMbps []float64 // sorted, one per placement (best single AP per client)
	JointAggMbps  []float64 // same placements, every client served jointly
	MedianGain    float64
	// MeanCollisionRate is the fraction of medium acquisitions that ended
	// in a collision, averaged over the joint runs — the contention the
	// single-flow experiments cannot exhibit.
	MeanCollisionRate float64
}

// RunCell simulates the multi-client cell: each placement spreads the APs
// over the floor, drops every client in usable-but-not-saturated range of
// its nearest AP (as in Fig. 17's motivation), and drains each client's
// backlog once with per-client best-single-AP service and once with
// SourceSync joint transmissions.
func RunCell(o CellOptions) CellExpResult {
	cfg := Profile80211()
	env := testbed.Mesh(cfg)
	m := mac.Default(cfg)
	ec := engine.Config{Seed: o.Seed, Workers: o.Workers}

	type plRes struct {
		singleBps, jointBps float64
		collisionRate       float64
	}
	rows := engine.Map(ec, 0, o.Placements, func(pl int, rng *rand.Rand) plRes {
		aps := make([]testbed.Point, o.APs)
		for a := range aps {
			// Spread the APs: each at least a quarter floor-width from the
			// others (bounded rejection sampling — fails loudly if the
			// floor cannot hold them).
			aps[a] = env.RandomPointWhere(rng, 100000, func(p testbed.Point) bool {
				for _, q := range aps[:a] {
					if testbed.Dist(p, q) < env.Width/4 {
						return false
					}
				}
				return true
			})
		}
		links := make([][]testbed.Link, o.Clients)
		for c := range links {
			// Clients sit 8-25 m from their nearest AP: links with rate
			// headroom, the regime where sender diversity pays.
			pos := env.RandomPointWhere(rng, 100000, func(p testbed.Point) bool {
				nearest := testbed.Dist(p, aps[0])
				for _, q := range aps[1:] {
					if d := testbed.Dist(p, q); d < nearest {
						nearest = d
					}
				}
				return nearest >= 8 && nearest <= 25
			})
			links[c] = make([]testbed.Link, o.APs)
			for a := range aps {
				links[c][a] = env.NewLink(rng, aps[a], pos)
			}
		}
		cell := lasthop.Cell{
			Mac:              m,
			PayloadBytes:     o.Payload,
			Links:            links,
			PacketsPerClient: o.Packets,
		}
		single := cell.RunBestSingleAP(rand.New(rand.NewSource(rng.Int63())))
		joint := cell.RunJoint(rand.New(rand.NewSource(rng.Int63())))
		var cr float64
		if joint.Acquisitions > 0 {
			cr = float64(joint.Collisions) / float64(joint.Acquisitions)
		}
		return plRes{single.AggregateBps, joint.AggregateBps, cr}
	})

	var res CellExpResult
	var gains []float64
	var crSum float64
	for _, r := range rows {
		res.SingleAggMbps = append(res.SingleAggMbps, r.singleBps/1e6)
		res.JointAggMbps = append(res.JointAggMbps, r.jointBps/1e6)
		if r.singleBps > 0 {
			gains = append(gains, r.jointBps/r.singleBps)
		}
		crSum += r.collisionRate
	}
	sortFloats(res.SingleAggMbps)
	sortFloats(res.JointAggMbps)
	res.MedianGain = dsp.Median(gains)
	if len(rows) > 0 {
		res.MeanCollisionRate = crSum / float64(len(rows))
	}
	return res
}

// ---------------------------------------------------------- crosstraffic

// CrossTrafficOptions configures the mesh cross-traffic experiment: the
// §8.4 topology's routed flow sharing its collision domain with contending
// single-hop flows between relays.
type CrossTrafficOptions struct {
	Seed         int64
	Topologies   int
	Packets      int // routed packets per run
	CrossFlows   int // contending single-hop flows
	CrossPackets int // backlog per cross flow
	Payload      int
	RateMbps     int
	Probes       int // measurement-phase probes per link
	// Workers bounds the engine's parallelism: 0 uses one worker per CPU,
	// 1 runs serially. Results are identical either way.
	Workers int
}

// DefaultCrossTrafficOptions returns the parameters used by ssbench.
func DefaultCrossTrafficOptions() CrossTrafficOptions {
	return CrossTrafficOptions{
		Seed: 10, Topologies: 20, Packets: 120, CrossFlows: 2,
		CrossPackets: 150, Payload: 1000, RateMbps: 12, Probes: 60,
	}
}

// CrossTrafficResult compares single-path routing and ExOR+SourceSync with
// and without cross traffic on the same topologies.
type CrossTrafficResult struct {
	SinglePathAloneMbps  []float64 // sorted CDFs, one entry per topology
	SinglePathLoadedMbps []float64
	SourceSyncAloneMbps  []float64
	SourceSyncLoadedMbps []float64
	// Median ratios of loaded over alone throughput (1 = unaffected).
	SinglePathRetention float64
	SourceSyncRetention float64
	// Median of SourceSync-loaded over single-path-loaded: does sender
	// diversity still pay under contention?
	GainUnderLoad float64
}

// RunCrossTraffic regenerates the cross-traffic comparison over random
// §8.4 mesh topologies: relays carry their own contending flows while the
// source routes packets to the destination.
func RunCrossTraffic(o CrossTrafficOptions) CrossTrafficResult {
	cfg := Profile80211()
	env := testbed.Mesh(cfg)
	rate, err := modem.RateByMbps(o.RateMbps)
	if err != nil {
		panic(err)
	}
	m := mac.Default(cfg)
	ec := engine.Config{Seed: o.Seed, Workers: o.Workers}

	type tpRes struct{ spAlone, spLoaded, ssAlone, ssLoaded float64 }
	rows := engine.Map(ec, 0, o.Topologies, func(tp int, rng *rand.Rand) tpRes {
		topo := randomMeshTopology(rng, env)
		meas := topo.Measure(rng, rate, o.Payload, o.Probes, 0.1)
		sim := &exor.Sim{Topo: topo, Meas: meas, Mac: m, Rate: rate, Payload: o.Payload}
		// Cross flows between distinct relays (nodes 1..N-2), drawn per
		// topology.
		relays := topo.N() - 2
		cross := make([]exor.CrossFlow, o.CrossFlows)
		for i := range cross {
			from := 1 + rng.Intn(relays)
			to := 1 + rng.Intn(relays-1)
			if to >= from {
				to++
			}
			cross[i] = exor.CrossFlow{From: from, To: to, Packets: o.CrossPackets}
		}
		spAlone := sim.Run(rand.New(rand.NewSource(rng.Int63())), exor.SinglePath, o.Packets)
		spLoaded, _ := sim.RunWithCross(rand.New(rand.NewSource(rng.Int63())), exor.SinglePath, o.Packets, cross)
		ssAlone := sim.Run(rand.New(rand.NewSource(rng.Int63())), exor.ExORSourceSync, o.Packets)
		ssLoaded, _ := sim.RunWithCross(rand.New(rand.NewSource(rng.Int63())), exor.ExORSourceSync, o.Packets, cross)
		return tpRes{spAlone.ThroughputBps, spLoaded.ThroughputBps, ssAlone.ThroughputBps, ssLoaded.ThroughputBps}
	})

	var res CrossTrafficResult
	var spRet, ssRet, gain []float64
	for _, r := range rows {
		res.SinglePathAloneMbps = append(res.SinglePathAloneMbps, r.spAlone/1e6)
		res.SinglePathLoadedMbps = append(res.SinglePathLoadedMbps, r.spLoaded/1e6)
		res.SourceSyncAloneMbps = append(res.SourceSyncAloneMbps, r.ssAlone/1e6)
		res.SourceSyncLoadedMbps = append(res.SourceSyncLoadedMbps, r.ssLoaded/1e6)
		if r.spAlone > 0 {
			spRet = append(spRet, r.spLoaded/r.spAlone)
		}
		if r.ssAlone > 0 {
			ssRet = append(ssRet, r.ssLoaded/r.ssAlone)
		}
		if r.spLoaded > 0 {
			gain = append(gain, r.ssLoaded/r.spLoaded)
		}
	}
	sortFloats(res.SinglePathAloneMbps)
	sortFloats(res.SinglePathLoadedMbps)
	sortFloats(res.SourceSyncAloneMbps)
	sortFloats(res.SourceSyncLoadedMbps)
	res.SinglePathRetention = dsp.Median(spRet)
	res.SourceSyncRetention = dsp.Median(ssRet)
	res.GainUnderLoad = dsp.Median(gain)
	return res
}
