package sourcesync

import (
	"math"
	"math/rand"

	"repro/internal/dsp"
	"repro/internal/engine"
	"repro/internal/exor"
	"repro/internal/lasthop"
	"repro/internal/mac"
	"repro/internal/modem"
	"repro/internal/netsim"
	"repro/internal/testbed"
)

// ----------------------------------------------------------------- cell

// CellOptions configures the multi-client WLAN cell experiment — §8.3
// scaled beyond the paper's single client: N clients with backlogged
// downlink traffic from M APs, all contending for one medium through
// internal/netsim.
type CellOptions struct {
	Seed       int64
	Placements int // random AP/client placements
	Clients    int // N clients sharing the cell
	APs        int // M APs serving it
	Packets    int // downlink packets per client
	Payload    int
	// Legacy disables the rate-aware interference model: no geometry is
	// wired into the cell, so collisions destroy every frame uncondition-
	// ally (the pre-model behavior). The default (false) runs the cell
	// with netsim.RateAware engaged — colliding downlinks may capture at
	// their own rate's decode threshold and surviving frames pay the
	// effective-SNR degradation.
	Legacy bool
	// WindowSec switches to fixed-time-window saturation mode: unbounded
	// backlogs drained for this many virtual seconds (Packets ignored), so
	// one starved client no longer gates the elapsed time. 0 keeps the
	// drain-the-backlog mode.
	WindowSec float64
	// Workers bounds the engine's parallelism: 0 uses one worker per CPU,
	// 1 runs serially. Results are identical either way.
	Workers int
	// Monitor optionally observes the run (trial progress) and lets the
	// caller cancel it cooperatively; a canceled run's output must be
	// discarded. Nil is free. See engine.Monitor.
	Monitor *engine.Monitor
}

// DefaultCellOptions returns the parameters used by ssbench: an 8-client,
// 2-AP cell under the rate-aware interference model.
func DefaultCellOptions() CellOptions {
	return CellOptions{Seed: 9, Placements: 20, Clients: 8, APs: 2, Packets: 120, Payload: 1460}
}

// CellExpResult carries the aggregate-throughput CDFs of the two serving
// modes and contention diagnostics.
type CellExpResult struct {
	SingleAggMbps []float64 // sorted, one per placement (best single AP per client)
	JointAggMbps  []float64 // same placements, every client served jointly
	MedianGain    float64
	// MeanCollisionRate is the fraction of medium acquisitions that ended
	// in a collision, averaged over the joint runs — the contention the
	// single-flow experiments cannot exhibit.
	MeanCollisionRate float64
	// MeanCaptureRate is captures per acquisition averaged over the joint
	// runs: colliding frames the rate-aware model let survive at their own
	// rate's decode threshold. 0 under Legacy.
	MeanCaptureRate float64
	// RateCorruption aggregates the interference model's per-rate outcomes
	// over every joint run (index = SampleRate rate index).
	RateCorruption []netsim.RateCorruption
}

// RunCell simulates the multi-client cell: each placement spreads the APs
// over the floor, drops every client in usable-but-not-saturated range of
// its nearest AP (as in Fig. 17's motivation), and drains each client's
// backlog once with per-client best-single-AP service and once with
// SourceSync joint transmissions. Unless o.Legacy is set, the cell runs
// with the rate-aware interference model: colliding downlinks may capture
// at their own rate's decode threshold and surviving frames pay the
// effective-SNR degradation in their delivery draws.
func RunCell(o CellOptions) CellExpResult {
	cfg := Profile80211()
	env := testbed.Mesh(cfg)
	m := mac.Default(cfg)
	ec := engine.Config{Seed: o.Seed, Workers: o.Workers, Monitor: o.Monitor}
	var model netsim.InterferenceModel
	if !o.Legacy {
		model = netsim.NewRateAware(cfg, modem.StandardRates(), o.Payload)
	}

	type plRes struct {
		singleBps, jointBps        float64
		collisionRate, captureRate float64
		corruption                 []netsim.RateCorruption
	}
	rows := engine.Map(ec, 0, o.Placements, func(pl int, rng *rand.Rand) plRes {
		aps, clientPos, links := placeCell(rng, env, o.APs, o.Clients)
		apPos := make([][]testbed.Point, o.Clients)
		for c := range apPos {
			apPos[c] = aps
		}
		cell := lasthop.Cell{
			Mac:              m,
			PayloadBytes:     o.Payload,
			Links:            links,
			PacketsPerClient: o.Packets,
			WindowSec:        o.WindowSec,
		}
		if !o.Legacy {
			// One collision domain still (CSRangeM 0), but with geometry
			// wired so the interference model prices every collision.
			cell.APPos = apPos
			cell.ClientPos = clientPos
			cell.Env = env
			cell.Model = model
		}
		single := cell.RunBestSingleAP(rand.New(rand.NewSource(rng.Int63()))) //sslint:allow detrand child RNG bridged from the per-trial stream; the parent draw is part of the contracted draw order
		joint := cell.RunJoint(rand.New(rand.NewSource(rng.Int63())))         //sslint:allow detrand child RNG bridged from the per-trial stream; the parent draw is part of the contracted draw order
		r := plRes{singleBps: single.AggregateBps, jointBps: joint.AggregateBps,
			corruption: joint.RateCorruption}
		if joint.Acquisitions > 0 {
			r.collisionRate = float64(joint.Collisions) / float64(joint.Acquisitions)
			r.captureRate = float64(joint.Captures) / float64(joint.Acquisitions)
		}
		return r
	})

	var res CellExpResult
	var gains []float64
	var crSum, capSum float64
	for _, r := range rows {
		res.SingleAggMbps = append(res.SingleAggMbps, r.singleBps/1e6)
		res.JointAggMbps = append(res.JointAggMbps, r.jointBps/1e6)
		if r.singleBps > 0 {
			gains = append(gains, r.jointBps/r.singleBps)
		}
		crSum += r.collisionRate
		capSum += r.captureRate
		res.RateCorruption = netsim.MergeRateCorruption(res.RateCorruption, r.corruption)
	}
	sortFloats(res.SingleAggMbps)
	sortFloats(res.JointAggMbps)
	res.MedianGain = dsp.Median(gains)
	if len(rows) > 0 {
		res.MeanCollisionRate = crSum / float64(len(rows))
		res.MeanCaptureRate = capSum / float64(len(rows))
	}
	return res
}

// placeCell draws one cell placement — the draw sequence RunCell has
// always used, shared with the scenario executor (figscenario.go) so a
// spec describing the same cell reproduces it draw for draw: the APs
// spread over the floor (each at least a quarter floor-width from the
// others; bounded rejection sampling fails loudly if the floor cannot
// hold them), then each client 8-25 m from its nearest AP — links with
// rate headroom, the regime where sender diversity pays — with one
// shadowed link drawn from every AP.
func placeCell(rng *rand.Rand, env *testbed.Testbed, nAPs, nClients int) (aps, clientPos []testbed.Point, links [][]testbed.Link) {
	aps = make([]testbed.Point, nAPs)
	for a := range aps {
		aps[a] = env.RandomPointWhere(rng, 100000, func(p testbed.Point) bool {
			for _, q := range aps[:a] {
				if testbed.Dist(p, q) < env.Width/4 {
					return false
				}
			}
			return true
		})
	}
	links = make([][]testbed.Link, nClients)
	clientPos = make([]testbed.Point, nClients)
	for c := range links {
		pos := env.RandomPointWhere(rng, 100000, func(p testbed.Point) bool {
			nearest := testbed.Dist(p, aps[0])
			for _, q := range aps[1:] {
				if d := testbed.Dist(p, q); d < nearest {
					nearest = d
				}
			}
			return nearest >= 8 && nearest <= 25
		})
		links[c] = make([]testbed.Link, nAPs)
		for a := range aps {
			links[c][a] = env.NewLink(rng, aps[a], pos)
		}
		clientPos[c] = pos
	}
	return aps, clientPos, links
}

// ---------------------------------------------------------- crosstraffic

// CrossTrafficOptions configures the mesh cross-traffic experiment: the
// §8.4 topology's routed flow sharing its collision domain with contending
// single-hop flows between relays.
type CrossTrafficOptions struct {
	Seed         int64
	Topologies   int
	Packets      int // routed packets per run
	CrossFlows   int // contending single-hop flows
	CrossPackets int // backlog per cross flow
	Payload      int
	RateMbps     int
	Probes       int // measurement-phase probes per link
	// AdaptCross gives every cross flow a SampleRate controller over the
	// standard rate table (instead of the fixed RateMbps), so rate
	// adaptation reacts to contention and interference-degraded loss.
	AdaptCross bool
	// Legacy disables the rate-aware interference model; collisions then
	// destroy every frame and hidden terminals never interfere (the
	// pre-model behavior).
	Legacy bool
	// CSRangeM is the carrier-sense range between cross-flow transmitters
	// (meters). 0 keeps the classic single collision domain; positive
	// values enable spatial reuse — and hidden terminals — between cross
	// flows in different parts of the mesh. The routed flow's transmitter
	// moves hop by hop, so it always contends with everyone.
	CSRangeM float64
	// WidthScale stretches the mesh floor (and the relay spread) by this
	// factor; 0 or 1 keeps the default geometry. The spatial-mesh variant
	// pairs a stretched floor with a finite CSRangeM so relay-to-relay
	// cross flows land in different cells.
	WidthScale float64
	// Workers bounds the engine's parallelism: 0 uses one worker per CPU,
	// 1 runs serially. Results are identical either way.
	Workers int
	// Monitor optionally observes the run (trial progress) and lets the
	// caller cancel it cooperatively; a canceled run's output must be
	// discarded. Nil is free. See engine.Monitor.
	Monitor *engine.Monitor
}

// DefaultCrossTrafficOptions returns the parameters used by ssbench:
// one collision domain, SampleRate-adapted cross flows, rate-aware
// interference.
func DefaultCrossTrafficOptions() CrossTrafficOptions {
	return CrossTrafficOptions{
		Seed: 10, Topologies: 20, Packets: 120, CrossFlows: 2,
		CrossPackets: 150, Payload: 1000, RateMbps: 12, Probes: 60,
		AdaptCross: true,
	}
}

// SpatialCrossTrafficOptions returns the spatial-mesh variant used by
// ssbench: the floor stretched to 1.2x the mesh default with the relays
// spread across the span, and a carrier-sense range shortened to 20 m so
// relay-to-relay cross flows land in different cells — they reuse the
// medium concurrently and corrupt each other as hidden terminals, priced
// by the rate-aware interference model. Stretching much further kills the
// routed path outright (hops pass the 12 Mbps waterfall), so the variant
// leans on the shorter carrier sense for its spatial structure.
func SpatialCrossTrafficOptions() CrossTrafficOptions {
	o := DefaultCrossTrafficOptions()
	o.Seed = 12
	o.CSRangeM = 20
	o.WidthScale = 1.2
	return o
}

// CrossTrafficResult compares single-path routing and ExOR+SourceSync with
// and without cross traffic on the same topologies.
type CrossTrafficResult struct {
	SinglePathAloneMbps  []float64 // sorted CDFs, one entry per topology
	SinglePathLoadedMbps []float64
	SourceSyncAloneMbps  []float64
	SourceSyncLoadedMbps []float64
	// Median ratios of loaded over alone throughput (1 = unaffected).
	SinglePathRetention float64
	SourceSyncRetention float64
	// Median of SourceSync-loaded over single-path-loaded: does sender
	// diversity still pay under contention?
	GainUnderLoad float64
	// CrossHiddenLosses totals the cross flows' attempts corrupted by
	// hidden terminals across every loaded run (spatial variant only).
	CrossHiddenLosses int
	// CrossRateCorruption aggregates the interference model's per-rate
	// outcomes over the cross flows of every loaded run (index = standard
	// rate index under AdaptCross, 0 otherwise).
	CrossRateCorruption []netsim.RateCorruption
}

// RunCrossTraffic regenerates the cross-traffic comparison over random
// §8.4 mesh topologies: relays carry their own contending flows while the
// source routes packets to the destination. With o.CSRangeM set (the
// spatial-mesh variant) the relays are spread across a stretched floor, so
// cross flows in different cells reuse the medium concurrently and corrupt
// each other as hidden terminals.
func RunCrossTraffic(o CrossTrafficOptions) CrossTrafficResult {
	cfg := Profile80211()
	env := testbed.Mesh(cfg)
	if o.WidthScale > 1 {
		env.Width *= o.WidthScale
	}
	rate, err := modem.RateByMbps(o.RateMbps)
	if err != nil {
		panic(err)
	}
	m := mac.Default(cfg)
	ec := engine.Config{Seed: o.Seed, Workers: o.Workers, Monitor: o.Monitor}
	var model netsim.InterferenceModel
	if !o.Legacy {
		// The cross flows' rate table: the standard rates under AdaptCross,
		// the single fixed rate otherwise.
		rates := []modem.Rate{rate}
		if o.AdaptCross {
			rates = modem.StandardRates()
		}
		model = netsim.NewRateAware(cfg, rates, o.Payload)
	}

	type tpRes struct {
		spAlone, spLoaded, ssAlone, ssLoaded float64
		crossHidden                          int
		crossCorruption                      []netsim.RateCorruption
	}
	// The spatial variant spreads relays across a stretched floor, where a
	// fraction of draws land with every src -> dst path past the rate's
	// waterfall: the routed run then measures a dead topology, not
	// contention. ETX-aware placement fixes that in two bounded stages:
	// the shadowing-SNR proxy inside randomMeshTopology prunes hopeless
	// geometry before the measurement phase, and if the measured ETX graph
	// still leaves the destination unreachable (fading in the probe draws
	// can kill a proxy-approved chain), the whole topology re-rolls. The
	// compact variant keeps nil + no re-roll to stay draw-identical to its
	// history.
	var routable func(*exor.Topology) bool
	if o.CSRangeM > 0 {
		routable = meshRoutablePredicate(cfg, rate, o.Payload)
	}
	rows := engine.Map(ec, 0, o.Topologies, func(tp int, rng *rand.Rand) tpRes {
		topo := randomMeshTopology(rng, env, o.CSRangeM > 0, routable)
		meas := topo.Measure(rng, rate, o.Payload, o.Probes, 0.1)
		for tries := 0; routable != nil && math.IsInf(meas.DistTo[0], 1) && tries < meshRelayRedraws; tries++ {
			topo = randomMeshTopology(rng, env, true, routable)
			meas = topo.Measure(rng, rate, o.Payload, o.Probes, 0.1)
		}
		sim := &exor.Sim{Topo: topo, Meas: meas, Mac: m, Rate: rate, Payload: o.Payload,
			CSRangeM: o.CSRangeM, Model: model, AdaptCross: o.AdaptCross}
		// Cross flows between distinct relays (nodes 1..N-2), drawn per
		// topology.
		relays := topo.N() - 2
		cross := make([]exor.CrossFlow, o.CrossFlows)
		for i := range cross {
			from := 1 + rng.Intn(relays)
			to := 1 + rng.Intn(relays-1)
			if to >= from {
				to++
			}
			cross[i] = exor.CrossFlow{From: from, To: to, Packets: o.CrossPackets}
		}
		spAlone := sim.Run(rand.New(rand.NewSource(rng.Int63())), exor.SinglePath, o.Packets)                               //sslint:allow detrand child RNG bridged from the per-trial stream; the parent draw is part of the contracted draw order
		spLoaded, spCross := sim.RunWithCross(rand.New(rand.NewSource(rng.Int63())), exor.SinglePath, o.Packets, cross)     //sslint:allow detrand child RNG bridged from the per-trial stream; the parent draw is part of the contracted draw order
		ssAlone := sim.Run(rand.New(rand.NewSource(rng.Int63())), exor.ExORSourceSync, o.Packets)                           //sslint:allow detrand child RNG bridged from the per-trial stream; the parent draw is part of the contracted draw order
		ssLoaded, ssCross := sim.RunWithCross(rand.New(rand.NewSource(rng.Int63())), exor.ExORSourceSync, o.Packets, cross) //sslint:allow detrand child RNG bridged from the per-trial stream; the parent draw is part of the contracted draw order
		r := tpRes{spAlone: spAlone.ThroughputBps, spLoaded: spLoaded.ThroughputBps,
			ssAlone: ssAlone.ThroughputBps, ssLoaded: ssLoaded.ThroughputBps}
		for _, c := range append(spCross, ssCross...) {
			r.crossHidden += c.HiddenLosses
			r.crossCorruption = netsim.MergeRateCorruption(r.crossCorruption, c.RateCorruption)
		}
		return r
	})

	var res CrossTrafficResult
	var spRet, ssRet, gain []float64
	for _, r := range rows {
		res.SinglePathAloneMbps = append(res.SinglePathAloneMbps, r.spAlone/1e6)
		res.SinglePathLoadedMbps = append(res.SinglePathLoadedMbps, r.spLoaded/1e6)
		res.SourceSyncAloneMbps = append(res.SourceSyncAloneMbps, r.ssAlone/1e6)
		res.SourceSyncLoadedMbps = append(res.SourceSyncLoadedMbps, r.ssLoaded/1e6)
		if r.spAlone > 0 {
			spRet = append(spRet, r.spLoaded/r.spAlone)
		}
		if r.ssAlone > 0 {
			ssRet = append(ssRet, r.ssLoaded/r.ssAlone)
		}
		if r.spLoaded > 0 {
			gain = append(gain, r.ssLoaded/r.spLoaded)
		}
		res.CrossHiddenLosses += r.crossHidden
		res.CrossRateCorruption = netsim.MergeRateCorruption(res.CrossRateCorruption, r.crossCorruption)
	}
	sortFloats(res.SinglePathAloneMbps)
	sortFloats(res.SinglePathLoadedMbps)
	sortFloats(res.SourceSyncAloneMbps)
	sortFloats(res.SourceSyncLoadedMbps)
	res.SinglePathRetention = dsp.Median(spRet)
	res.SourceSyncRetention = dsp.Median(ssRet)
	res.GainUnderLoad = dsp.Median(gain)
	return res
}
