package sourcesync

import (
	"math"
	"math/rand"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/engine"
	"repro/internal/modem"
	"repro/internal/phy"
)

// Fig12Options configures the synchronization-error experiment (§8.1.1):
// pairs of transmitters synchronize via SourceSync at a receiver; each
// calibration frame yields a single-shot misalignment estimate and a
// repetition-averaged ground truth, and the experiment reports percentiles
// of their difference versus SNR.
type Fig12Options struct {
	Seed   int64
	SNRsdB []float64 // per-sender SNR operating points
	Trials int       // frames per SNR point
	Reps   int       // training repetitions per calibration frame
	// Workers bounds the engine's parallelism: 0 uses one worker per CPU,
	// 1 runs serially. Results are identical either way.
	Workers int
	// Monitor optionally observes the run (trial progress) and lets the
	// caller cancel it cooperatively; a canceled run's output must be
	// discarded. Nil is free. See engine.Monitor.
	Monitor *engine.Monitor
}

// DefaultFig12Options returns the parameters used by ssbench.
func DefaultFig12Options() Fig12Options {
	return Fig12Options{
		Seed:   1,
		SNRsdB: []float64{4, 6, 9, 12, 15, 18, 22, 25},
		Trials: 30,
		Reps:   60,
	}
}

// Fig12Point is one SNR operating point's result.
type Fig12Point struct {
	SNRdB   float64
	P50Ns   float64 // median synchronization estimation error
	P95Ns   float64 // 95th percentile
	Usable  int     // frames where the co-sender joined and decode succeeded
	Dropped int
}

// fig12Trial is one calibration frame's outcome.
type fig12Trial struct {
	errNs float64
	ok    bool
}

// RunFig12 regenerates Figure 12: 95th-percentile synchronization error
// versus SNR on the WiGLAN-like profile. Trials fan out across the engine's
// worker pool; each draws its RNG from (Seed, SNR index, trial index), so
// the output is identical at every worker count.
func RunFig12(o Fig12Options) []Fig12Point {
	cfg := ProfileWiGLAN()
	nsToSample := cfg.SampleRateHz / 1e9
	ec := engine.Config{Seed: o.Seed, Workers: o.Workers, Monitor: o.Monitor}

	grid := engine.Grid(ec, len(o.SNRsdB), o.Trials, func(pt, trial int, rng *rand.Rand) fig12Trial {
		sim := fig12Sim(rng, cfg, o.SNRsdB[pt])
		run, err := sim.RunCalibration(o.Reps)
		if err != nil || !run.CoJoined[0] {
			return fig12Trial{}
		}
		rx := &phy.JointReceiver{Cfg: cfg, FFTBackoff: 3}
		res, err := rx.ReceiveCalibration(sim.P, run.RxWave, 0, o.Reps)
		if err != nil {
			return fig12Trial{}
		}
		return fig12Trial{errNs: math.Abs(res.SingleShot-res.GroundTruth) / nsToSample, ok: true}
	})

	var out []Fig12Point
	for i, snr := range o.SNRsdB {
		var errsNs []float64
		dropped := 0
		for _, tr := range grid[i] {
			if tr.ok {
				errsNs = append(errsNs, tr.errNs)
			} else {
				dropped++
			}
		}
		pt := Fig12Point{SNRdB: snr, Usable: len(errsNs), Dropped: dropped}
		if len(errsNs) > 0 {
			pt.P50Ns = dsp.Percentile(errsNs, 50)
			pt.P95Ns = dsp.Percentile(errsNs, 95)
		}
		out = append(out, pt)
	}
	return out
}

// fig12Sim draws one random transmitter-pair placement at the target SNR.
func fig12Sim(rng *rand.Rand, cfg *Config, snrDB float64) *phy.JointSimConfig {
	p := phy.JointFrameParams{
		Cfg: cfg, Rate: modem.Rate{Mod: modem.QPSK, Code: modem.Rate12},
		DataCP: cfg.CPLen, PayloadLen: 40, Seed: 0x5d, NumCo: 1,
		LeadID: 1, PacketID: 0x1234,
	}
	mk := func() *channel.Multipath { return channel.NewIndoor(rng, cfg.SampleRateHz, 30, 6) }
	sigPower := cePower(cfg)
	noise := channel.NoisePowerForSNR(sigPower, snrDB)
	dLeadCo := 1 + rng.Float64()*10
	tLeadRx := 1 + rng.Float64()*12
	tCoRx := 1 + rng.Float64()*12
	return &phy.JointSimConfig{
		P:        p,
		Lead:     phy.LeadSim{ResidCFO: smallResid(rng, cfg), Phase: rng.Float64() * 2 * math.Pi},
		LeadToCo: []phy.Link{{Gain: 1, Delay: dLeadCo, Path: mk()}},
		LeadToRx: phy.Link{Gain: 1, Delay: tLeadRx, Path: mk()},
		CoToRx:   []phy.Link{{Gain: 1, Delay: tCoRx, Path: mk()}},
		Co: []phy.CoSenderSim{{
			Turnaround:       600 + rng.Float64()*400,
			OscCFO:           channel.PPMToCFO((rng.Float64()*2-1)*20, 5.8e9, cfg.SampleRateHz),
			ResidCFO:         smallResid(rng, cfg),
			Phase:            rng.Float64() * 2 * math.Pi,
			EstDelayFromLead: dLeadCo,
			TxOffset:         tLeadRx - tCoRx,
			NoisePower:       noise,
			FFTBackoff:       3,
			DetectJitter:     38,
		}},
		NoiseRx: noise,
		Rng:     rng,
	}
}

// smallResid draws a residual CFO after pre-correction: a couple percent of
// a typical crystal offset.
func smallResid(rng *rand.Rand, cfg *Config) float64 {
	return channel.PPMToCFO((rng.Float64()*2-1)*0.4, 5.8e9, cfg.SampleRateHz)
}

// cePower returns the per-sample power of one OFDM training symbol for this
// profile (the reference for SNR targets).
func cePower(cfg *Config) float64 {
	lts := cfg.LTSTime()
	return dsp.MeanPower(lts)
}
